#include "net/transport.hpp"

#include <atomic>
#include <stdexcept>

namespace motif::net {

// The loopback endpoint still runs every frame through encode_frame /
// decode_frame: loopback tests therefore cover the exact byte stream TCP
// carries, and a codec asymmetry fails deterministically in-process
// instead of flaking across sockets.
struct LoopbackHub::Endpoint final : Transport {
  LoopbackHub* hub = nullptr;
  std::uint32_t self = 0;
  std::mutex mu;  // guards recv against set_receiver/stop
  RecvFn recv;
  std::atomic<bool> stopped{false};

  std::uint32_t rank() const override { return self; }
  std::uint32_t ranks() const override { return hub->ranks(); }

  void set_receiver(RecvFn fn) override {
    std::lock_guard<std::mutex> lk(mu);
    recv = std::move(fn);
  }

  void start() override {}

  std::size_t send(std::uint32_t to, const Frame& f) override {
    if (stopped.load(std::memory_order_acquire)) {
      throw std::runtime_error("loopback transport stopped");
    }
    if (to >= hub->ranks()) throw std::runtime_error("loopback: no such rank");
    std::vector<std::uint8_t> bytes = encode_frame(f);
    const std::size_t wire = bytes.size();

    Endpoint& dst = *hub->eps_[to];
    if (dst.stopped.load(std::memory_order_acquire)) return wire;
    std::size_t consumed = 0;
    std::optional<Frame> decoded =
        decode_frame(bytes.data(), bytes.size(), &consumed);
    if (!decoded || consumed != bytes.size()) {
      throw WireError("loopback: frame did not round-trip");
    }
    RecvFn fn;
    {
      std::lock_guard<std::mutex> lk(dst.mu);
      fn = dst.recv;  // copy so delivery runs outside the endpoint lock
    }
    if (fn) fn(std::move(*decoded), wire);
    return wire;
  }

  void stop() override { stopped.store(true, std::memory_order_release); }
};

LoopbackHub::LoopbackHub(std::uint32_t ranks) {
  eps_.reserve(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    auto ep = std::make_unique<Endpoint>();
    ep->hub = this;
    ep->self = r;
    eps_.push_back(std::move(ep));
  }
}

LoopbackHub::~LoopbackHub() = default;

Transport& LoopbackHub::endpoint(std::uint32_t r) { return *eps_.at(r); }

}  // namespace motif::net
