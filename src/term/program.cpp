#include "term/program.hpp"

#include <algorithm>
#include <functional>

#include "term/subst.hpp"
#include "term/writer.hpp"

namespace motif::term {

GoalView strip_placement(const Term& goal) {
  Term d = goal.deref();
  if (d.is_compound() && d.functor() == "@" && d.arity() == 2) {
    return GoalView{d.arg(0), d.arg(1), true};
  }
  return GoalView{d, Term::nil(), false};
}

ProcKey goal_key(const Term& goal) {
  Term g = strip_placement(goal).goal.deref();
  return ProcKey{g.functor(), g.arity()};
}

Program Program::parse(std::string_view src) {
  return Program(parse_clauses(src));
}

Program Program::linked_with(const Program& lib) const {
  // Keep clause order within each definition; definitions of the
  // application come first, then library definitions. Library clauses for
  // an already-present definition are appended right after it so the
  // grouped listing stays coherent.
  Program out = *this;
  for (const auto& c : lib.clauses_) out.clauses_.push_back(c);
  return out;
}

std::vector<ProcKey> Program::defined() const {
  std::vector<ProcKey> out;
  for (const auto& c : clauses_) {
    ProcKey k{c.head.functor(), c.head.arity()};
    if (std::find(out.begin(), out.end(), k) == out.end()) out.push_back(k);
  }
  return out;
}

bool Program::defines(const ProcKey& k) const {
  return std::any_of(clauses_.begin(), clauses_.end(), [&](const Clause& c) {
    return c.head.functor() == k.name && c.head.arity() == k.arity;
  });
}

std::vector<Clause> Program::rules_for(const ProcKey& k) const {
  std::vector<Clause> out;
  for (const auto& c : clauses_) {
    if (c.head.functor() == k.name && c.head.arity() == k.arity) {
      out.push_back(c);
    }
  }
  return out;
}

std::map<ProcKey, std::set<ProcKey>> Program::call_graph() const {
  std::map<ProcKey, std::set<ProcKey>> g;
  for (const auto& c : clauses_) {
    ProcKey from{c.head.functor(), c.head.arity()};
    auto& out = g[from];
    for (const auto& goal : c.body) {
      Term stripped = strip_placement(goal).goal.deref();
      if (stripped.is_var()) continue;  // metacall; no static edge
      if (!stripped.is_atom() && !stripped.is_compound()) continue;
      out.insert(goal_key(stripped));
    }
  }
  return g;
}

std::set<ProcKey> Program::callers_of(
    const std::function<bool(const ProcKey&)>& target) const {
  const auto g = call_graph();
  std::set<ProcKey> need;
  // Seed: definitions that call a target directly.
  for (const auto& [from, tos] : g) {
    for (const auto& to : tos) {
      if (target(to)) {
        need.insert(from);
        break;
      }
    }
  }
  // Fixpoint: definitions that call a needing definition.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [from, tos] : g) {
      if (need.count(from)) continue;
      for (const auto& to : tos) {
        if (need.count(to)) {
          need.insert(from);
          changed = true;
          break;
        }
      }
    }
  }
  return need;
}

std::string Program::to_source() const { return format_clauses(clauses_); }

bool alpha_equal_clause(const Clause& a, const Clause& b) {
  if (a.guard.size() != b.guard.size() || a.body.size() != b.body.size()) {
    return false;
  }
  Bindings va, vb;
  if (!alpha_equal(a.head, b.head, va, vb)) return false;
  for (std::size_t i = 0; i < a.guard.size(); ++i) {
    if (!alpha_equal(a.guard[i], b.guard[i], va, vb)) return false;
  }
  for (std::size_t i = 0; i < a.body.size(); ++i) {
    if (!alpha_equal(a.body[i], b.body[i], va, vb)) return false;
  }
  return true;
}

bool Program::alpha_equivalent(const Program& other) const {
  if (clauses_.size() != other.clauses_.size()) return false;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (!alpha_equal_clause(clauses_[i], other.clauses_[i])) return false;
  }
  return true;
}

}  // namespace motif::term
