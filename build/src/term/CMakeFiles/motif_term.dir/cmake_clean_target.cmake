file(REMOVE_RECURSE
  "libmotif_term.a"
)
