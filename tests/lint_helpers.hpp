// Shared assertion for the transform suites: a motif application output
// M(A) = T(A) ∪ L must stay well-moded — zero motiflint diagnostics.
#pragma once

#include <gtest/gtest.h>

#include "term/program.hpp"
#include "transform/validate.hpp"

inline ::testing::AssertionResult WellModed(const motif::term::Program& p) {
  const auto report = motif::transform::validate(p);
  if (report.clean()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "\n" << report.to_string();
}
