#include "align/phylo.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "align/nw.hpp"
#include "align/sequence.hpp"

namespace motif::align {

Phylo::Ptr yule_tree(std::size_t taxa, rt::Rng& rng, double mean_branch) {
  if (taxa == 0) taxa = 1;
  auto make_leaf = [] {
    auto n = std::make_shared<Phylo>();
    n->taxon = 0;  // placeholder; renumbered below
    return n;
  };
  std::shared_ptr<Phylo> root = make_leaf();
  std::vector<std::shared_ptr<Phylo>> leaves{root};
  while (leaves.size() < taxa) {
    // Split a uniformly random extant lineage.
    const std::size_t pick = rng.below(leaves.size());
    std::shared_ptr<Phylo> node = leaves[pick];
    auto l = make_leaf();
    auto r = make_leaf();
    node->taxon = -1;
    node->left = l;
    node->right = r;
    node->left_len = rng.exponential(1.0 / mean_branch);
    node->right_len = rng.exponential(1.0 / mean_branch);
    leaves[pick] = l;
    leaves.push_back(r);
  }
  // Number taxa 0..taxa-1 left to right (deterministic given the rng).
  int counter = 0;
  std::function<void(Phylo*)> renumber = [&](Phylo* n) {
    if (!n->left) {
      n->taxon = counter++;
      return;
    }
    renumber(const_cast<Phylo*>(n->left.get()));
    renumber(const_cast<Phylo*>(n->right.get()));
  };
  renumber(root.get());
  return root;
}

std::vector<std::string> evolve_family(const Phylo::Ptr& tree,
                                       std::size_t root_length,
                                       rt::Rng& rng) {
  std::vector<std::string> out(tree->leaf_count());
  MutationModel model;
  std::function<void(const Phylo::Ptr&, const std::string&)> walk =
      [&](const Phylo::Ptr& n, const std::string& seq) {
        if (n->is_leaf()) {
          out[static_cast<std::size_t>(n->taxon)] = seq;
          return;
        }
        walk(n->left, evolve(seq, n->left_len, model, rng));
        walk(n->right, evolve(seq, n->right_len, model, rng));
      };
  walk(tree, random_sequence(rng, root_length));
  return out;
}

Tree<int, char>::Ptr upgma(std::vector<std::vector<double>> dist) {
  using GT = Tree<int, char>;
  const std::size_t n = dist.size();
  std::vector<GT::Ptr> clusters(n);
  std::vector<double> sizes(n, 1.0);
  std::vector<bool> alive(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    clusters[i] = GT::leaf(static_cast<int>(i));
  }
  std::size_t remaining = n;
  while (remaining > 1) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi.
    clusters[bi] = GT::node('+', clusters[bi], clusters[bj]);
    const double wi = sizes[bi], wj = sizes[bj];
    for (std::size_t k = 0; k < n; ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      const double d =
          (dist[bi][k] * wi + dist[bj][k] * wj) / (wi + wj);
      dist[bi][k] = dist[k][bi] = d;
    }
    sizes[bi] += sizes[bj];
    alive[bj] = false;
    --remaining;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) return clusters[i];
  }
  return nullptr;
}

std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::string>& seqs, int k) {
  const std::size_t n = seqs.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = kmer_distance(seqs[i], seqs[j], k);
    }
  }
  return d;
}

Tree<int, char>::Ptr guide_from_phylo(const Phylo::Ptr& tree) {
  using GT = Tree<int, char>;
  if (tree->is_leaf()) return GT::leaf(tree->taxon);
  return GT::node('+', guide_from_phylo(tree->left),
                  guide_from_phylo(tree->right));
}

}  // namespace motif::align
