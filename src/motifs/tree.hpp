// Binary reduction trees: the data structure both tree-reduction motifs
// operate on (paper Section 3.1). A tree is either leaf(value) or
// node(tag, left, right); reduction applies a user "eval" at every
// internal node — any associative (or simply well-parenthesised) operator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/rng.hpp"

namespace motif {

/// Immutable binary tree. `V` is the leaf value type, `Tag` identifies the
/// operation at an internal node (e.g. char '+'/'*', or an index into an
/// application table).
template <class V, class Tag = char>
class Tree {
 public:
  using Ptr = std::shared_ptr<const Tree>;

  static Ptr leaf(V v) {
    auto t = std::make_shared<Tree>(Private{});
    t->value_ = std::move(v);
    t->is_leaf_ = true;
    return t;
  }

  static Ptr node(Tag tag, Ptr left, Ptr right) {
    auto t = std::make_shared<Tree>(Private{});
    t->tag_ = std::move(tag);
    t->left_ = std::move(left);
    t->right_ = std::move(right);
    t->is_leaf_ = false;
    return t;
  }

  bool is_leaf() const { return is_leaf_; }
  const V& value() const { return value_; }
  const Tag& tag() const { return tag_; }
  const Ptr& left() const { return left_; }
  const Ptr& right() const { return right_; }

  // Counting walks are iterative: spine trees can be deeper than the
  // call stack allows.
  std::size_t leaf_count() const {
    std::size_t n = 0;
    walk([&](const Tree& t) { n += t.is_leaf() ? 1 : 0; });
    return n;
  }

  std::size_t node_count() const {  // internal + leaves
    std::size_t n = 0;
    walk([&](const Tree&) { ++n; });
    return n;
  }

  std::size_t height() const {
    std::vector<std::pair<const Tree*, std::size_t>> stack{{this, 0}};
    std::size_t h = 0;
    while (!stack.empty()) {
      auto [t, d] = stack.back();
      stack.pop_back();
      h = std::max(h, d);
      if (!t->is_leaf_) {
        stack.push_back({t->left_.get(), d + 1});
        stack.push_back({t->right_.get(), d + 1});
      }
    }
    return h;
  }

  /// Pre-order visit of every node (iterative).
  template <class F>
  void walk(F&& f) const {
    std::vector<const Tree*> stack{this};
    while (!stack.empty()) {
      const Tree* t = stack.back();
      stack.pop_back();
      f(*t);
      if (!t->is_leaf_) {
        stack.push_back(t->left_.get());
        stack.push_back(t->right_.get());
      }
    }
  }

  // make_shared needs a public constructor; Private keeps it unusable
  // outside leaf()/node().
  struct Private {};
  explicit Tree(Private) {}

  ~Tree() {
    // Iterative teardown: a spine tree's node chain must not unwind via
    // recursive shared_ptr destruction.
    std::vector<Ptr> pending;
    auto grab = [&pending](Ptr& p) {
      if (p && p.use_count() == 1) pending.push_back(std::move(p));
      p.reset();
    };
    grab(left_);
    grab(right_);
    while (!pending.empty()) {
      Ptr t = std::move(pending.back());
      pending.pop_back();
      auto* m = const_cast<Tree*>(t.get());  // sole owner; safe to gut
      grab(m->left_);
      grab(m->right_);
    }
  }

 private:
  bool is_leaf_ = true;
  V value_{};
  Tag tag_{};
  Ptr left_, right_;
};

/// Sequential reduction (the correctness oracle for every parallel motif).
/// Eval: V(const Tag&, const V&, const V&). Iterative post-order so very
/// deep (spine) trees cannot overflow the stack.
template <class V, class Tag, class Eval>
V reduce_sequential(const typename Tree<V, Tag>::Ptr& root, Eval&& eval) {
  using Ptr = typename Tree<V, Tag>::Ptr;
  struct Frame {
    Ptr t;
    int stage = 0;  // 0: visit left, 1: visit right, 2: combine
    V lv{}, rv{};
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  V result{};
  bool have_result = false;
  auto deliver = [&](V v) {
    // Pop the finished frame's value into its parent (or the result).
    for (;;) {
      if (stack.empty()) {
        result = std::move(v);
        have_result = true;
        return;
      }
      Frame& p = stack.back();
      if (p.stage == 1) {
        p.lv = std::move(v);
        return;
      }
      // stage == 2: right value arrived; combine and propagate.
      p.rv = std::move(v);
      V combined = eval(p.t->tag(), p.lv, p.rv);
      stack.pop_back();
      v = std::move(combined);
    }
  };
  while (!have_result) {
    Frame& f = stack.back();
    if (f.t->is_leaf()) {
      V v = f.t->value();
      stack.pop_back();
      deliver(std::move(v));
      continue;
    }
    if (f.stage == 0) {
      f.stage = 1;
      stack.push_back({f.t->left()});
    } else if (f.stage == 1) {
      f.stage = 2;
      stack.push_back({f.t->right()});
    }
  }
  return result;
}

/// Random binary tree with `leaves` leaves (uniform recursive split),
/// leaf values and tags drawn from the provided generators.
template <class V, class Tag>
typename Tree<V, Tag>::Ptr random_tree(
    rt::Rng& rng, std::size_t leaves,
    const std::function<V(rt::Rng&)>& leaf_gen,
    const std::function<Tag(rt::Rng&)>& tag_gen) {
  if (leaves == 1) return Tree<V, Tag>::leaf(leaf_gen(rng));
  const std::size_t lhs = 1 + rng.below(leaves - 1);
  Tag t = tag_gen(rng);
  auto l = random_tree<V, Tag>(rng, lhs, leaf_gen, tag_gen);
  auto r = random_tree<V, Tag>(rng, leaves - lhs, leaf_gen, tag_gen);
  return Tree<V, Tag>::node(std::move(t), std::move(l), std::move(r));
}

/// Perfectly balanced tree over `leaves` leaves.
template <class V, class Tag>
typename Tree<V, Tag>::Ptr balanced_tree(
    std::size_t leaves, const std::function<V(std::size_t)>& leaf_at,
    Tag tag, std::size_t first = 0) {
  if (leaves == 1) return Tree<V, Tag>::leaf(leaf_at(first));
  const std::size_t lhs = leaves / 2;
  return Tree<V, Tag>::node(
      tag, balanced_tree<V, Tag>(lhs, leaf_at, tag, first),
      balanced_tree<V, Tag>(leaves - lhs, leaf_at, tag, first + lhs));
}

/// Degenerate left-spine tree (worst case for naive parallelism).
template <class V, class Tag>
typename Tree<V, Tag>::Ptr spine_tree(
    std::size_t leaves, const std::function<V(std::size_t)>& leaf_at,
    Tag tag) {
  auto t = Tree<V, Tag>::leaf(leaf_at(0));
  for (std::size_t i = 1; i < leaves; ++i) {
    t = Tree<V, Tag>::node(tag, t, Tree<V, Tag>::leaf(leaf_at(i)));
  }
  return t;
}

}  // namespace motif
