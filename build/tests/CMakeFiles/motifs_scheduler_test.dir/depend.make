# Empty dependencies file for motifs_scheduler_test.
# This may be replaced when dependencies are built.
