# Empty dependencies file for bench_compose.
# This may be replaced when dependencies are built.
